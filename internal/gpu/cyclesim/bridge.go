package cyclesim

import "mobilstm/internal/gpu"

// FromConfig derives cycle-level machine parameters from the analytic
// platform description, so both models describe the same hardware.
func FromConfig(cfg gpu.Config) Params {
	return Params{
		SMs:            cfg.SMs,
		WarpSlotsPerSM: cfg.MaxThreadsPerSM / cfg.WarpSize,
		// Each core retires one lane-op per cycle: an SM issues
		// CoresPerSM/WarpSize warp-instructions per cycle.
		IssuePerCycle: cfg.CoresPerSM / cfg.WarpSize,
		// The shared port serves its per-cycle byte budget in 64 B
		// half-warp transactions.
		SharedAccessPerCycle: maxInt(1, int(cfg.SharedBWBytesPerCycle)/64),
		DRAMLinesPerCycle:    cfg.DRAMBytesPerCycle() / float64(cfg.L2LineBytes),
		DRAMLatency:          300,
		LaunchCycles:         int(cfg.KernelLaunchCycles),
	}
}

// FromSpec translates an analytic kernel descriptor into a warp-level
// workload. The translation preserves totals: FLOPs become warp FMA
// instructions, shared bytes become warp-wide accesses, DRAM bytes become
// line batches with a gemv-like memory-level parallelism of 8 lines per
// request burst.
func FromSpec(cfg gpu.Config, k gpu.KernelSpec) Workload {
	warps := (k.Threads + cfg.WarpSize - 1) / cfg.WarpSize
	if warps < 1 {
		warps = 1
	}
	lanes := float64(warps * cfg.WarpSize)
	computeInstr := k.FLOPs / 2 / lanes // FMA retires 2 FLOPs per lane
	if k.ComputeScale > 1 {
		computeInstr *= k.ComputeScale // divergence / reconfiguration
	}
	sharedAccesses := k.SharedBytes / 64 / float64(warps)
	lines := k.DRAMBytes / float64(cfg.L2LineBytes) / float64(warps)
	if k.EffectiveDRAMFrac > 0 && k.EffectiveDRAMFrac < 1 {
		lines /= k.EffectiveDRAMFrac // un-coalesced bursts waste lines
	}
	return Workload{
		Warps:            warps,
		ComputePerWarp:   int(computeInstr + 0.5),
		SharedPerWarp:    int(sharedAccesses + 0.5),
		DRAMLinesPerWarp: int(lines + 0.5),
		MemBatch:         8,
	}
}

// SimulateSpec runs one analytic kernel descriptor through the
// cycle-level model.
func SimulateSpec(cfg gpu.Config, k gpu.KernelSpec) Result {
	return Simulate(FromConfig(cfg), FromSpec(cfg, k))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
