package gpu

import "mobilstm/internal/tensor"

// Cache is a set-associative, LRU, line-granularity cache simulator. It is
// used to measure the actually-loaded DRAM bytes of the baseline per-cell
// Sgemv flow (§III-A: "the size of the actually loaded data is upto 100X
// larger than the original data size") and to validate the analytic miss
// model used by the fast timing path.
type Cache struct {
	lineBytes int64
	sets      int
	ways      int
	// tags[set][way] holds line tags; lru[set][way] holds recency
	// counters (higher = more recent).
	tags  [][]int64
	valid [][]bool
	lru   [][]uint64
	tick  uint64

	accesses int64
	misses   int64
}

// NewCache builds a cache of the given total size, line size and
// associativity. size must be a multiple of lineBytes*ways.
func NewCache(size, lineBytes int64, ways int) *Cache {
	if size <= 0 || lineBytes <= 0 || ways <= 0 {
		tensor.Panicf("gpu: invalid cache geometry")
	}
	sets := int(size / (lineBytes * int64(ways)))
	if sets < 1 {
		sets = 1
	}
	c := &Cache{lineBytes: lineBytes, sets: sets, ways: ways}
	c.tags = make([][]int64, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for s := 0; s < sets; s++ {
		c.tags[s] = make([]int64, ways)
		c.valid[s] = make([]bool, ways)
		c.lru[s] = make([]uint64, ways)
	}
	return c
}

// NewL2 builds the L2 cache described by the config.
func NewL2(cfg Config) *Cache {
	return NewCache(cfg.L2Bytes, cfg.L2LineBytes, cfg.L2Ways)
}

// Access touches the byte address addr and reports whether it hit. A miss
// fills the line, evicting the LRU way of its set.
func (c *Cache) Access(addr int64) bool {
	line := addr / c.lineBytes
	set := int(line % int64(c.sets))
	c.accesses++
	c.tick++
	tags, valid, lru := c.tags[set], c.valid[set], c.lru[set]
	for w := 0; w < c.ways; w++ {
		if valid[w] && tags[w] == line {
			lru[w] = c.tick
			return true
		}
	}
	c.misses++
	victim := 0
	for w := 1; w < c.ways; w++ {
		if !valid[w] {
			victim = w
			break
		}
		if lru[w] < lru[victim] {
			victim = w
		}
	}
	tags[victim] = line
	valid[victim] = true
	lru[victim] = c.tick
	return false
}

// AccessRange touches every line of the byte range [addr, addr+n) once and
// returns the number of misses. It models a coalesced streaming read of a
// contiguous buffer.
func (c *Cache) AccessRange(addr, n int64) int64 {
	if n <= 0 {
		return 0
	}
	var missed int64
	first := addr / c.lineBytes
	last := (addr + n - 1) / c.lineBytes
	for line := first; line <= last; line++ {
		if !c.Access(line * c.lineBytes) {
			missed++
		}
	}
	return missed
}

// Reset invalidates the cache and clears statistics.
func (c *Cache) Reset() {
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			c.valid[s][w] = false
			c.lru[s][w] = 0
		}
	}
	c.tick = 0
	c.accesses = 0
	c.misses = 0
}

// Accesses returns the number of line accesses so far.
func (c *Cache) Accesses() int64 { return c.accesses }

// Misses returns the number of line misses so far.
func (c *Cache) Misses() int64 { return c.misses }

// MissBytes returns the DRAM traffic generated so far, in bytes.
func (c *Cache) MissBytes() int64 { return c.misses * c.lineBytes }

// LineBytes returns the cache line size.
func (c *Cache) LineBytes() int64 { return c.lineBytes }
