package gpu

import "testing"

func TestPlatformsSane(t *testing.T) {
	for _, cfg := range Platforms() {
		if cfg.Name == "" {
			t.Fatal("unnamed platform")
		}
		if cfg.Cores() <= 0 || cfg.ClockHz <= 0 || cfg.DRAMBandwidth <= 0 {
			t.Fatalf("%s: degenerate config", cfg.Name)
		}
		if cfg.L2Bytes < cfg.L2LineBytes*int64(cfg.L2Ways) {
			t.Fatalf("%s: L2 smaller than one set", cfg.Name)
		}
		if cfg.MaxThreadsPerSM%cfg.WarpSize != 0 {
			t.Fatalf("%s: thread slots not warp-aligned", cfg.Name)
		}
	}
}

func TestPlatformGenerationOrdering(t *testing.T) {
	k1, x1, x2 := TegraK1(), TegraX1(), TegraX2()
	if !(k1.DRAMBandwidth < x1.DRAMBandwidth && x1.DRAMBandwidth < x2.DRAMBandwidth) {
		t.Fatal("DRAM bandwidth should grow across generations")
	}
	if !(k1.PeakFLOPs() < x1.PeakFLOPs() && x1.PeakFLOPs() < x2.PeakFLOPs()) {
		t.Fatal("compute should grow across generations")
	}
}

func TestTegraX1MatchesTableI(t *testing.T) {
	cfg := TegraX1()
	if cfg.Cores() != 256 || cfg.ClockHz != 998e6 || cfg.DRAMBandwidth != 25.6e9 {
		t.Fatalf("Table I mismatch: %+v", cfg)
	}
}
