package mobilstm_test

import (
	"fmt"

	"mobilstm"
)

// Open a Table II benchmark on the simulated Tegra X1 and inspect the
// platform calibration.
func ExampleOpen() {
	sys, err := mobilstm.Open("MR", mobilstm.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(sys.Name(), "MTS:", sys.MTS())
	// Output: MR MTS: 5
}

// The exact baseline is always threshold set 0: no approximation, no
// speedup.
func ExampleSystem_Evaluate() {
	sys, err := mobilstm.Open("MR", mobilstm.Options{})
	if err != nil {
		panic(err)
	}
	o := sys.Evaluate(mobilstm.ModeBaseline, 0)
	fmt.Printf("%.2fx at %.0f%% accuracy\n", o.Speedup, o.Accuracy*100)
	// Output: 1.00x at 100% accuracy
}

// List the six NLP applications of the paper's Table II.
func ExampleBenchmarks() {
	for _, b := range mobilstm.Benchmarks() {
		fmt.Printf("%s: %d hidden, %d layers, %d cells\n", b.Name, b.Hidden, b.Layers, b.Length)
	}
	// Output:
	// IMDB: 512 hidden, 3 layers, 80 cells
	// MR: 256 hidden, 1 layers, 22 cells
	// BABI: 256 hidden, 3 layers, 86 cells
	// SNLI: 300 hidden, 2 layers, 100 cells
	// PTB: 650 hidden, 3 layers, 200 cells
	// MT: 500 hidden, 4 layers, 50 cells
}
