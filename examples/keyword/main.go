// Keyword spotting with a GRU: the paper's §II-B note implemented — the
// same memory-friendly techniques applied to a GRU network, where the
// update gate replaces the output gate as the DRS trigger and skipped
// candidate rows carry the previous state instead of zeroing it.
//
//	go run ./examples/keyword
package main

import (
	"fmt"
	"log"

	"mobilstm"
)

func main() {
	sys, err := mobilstm.OpenGRU("KWS-GRU")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("always-on keyword spotting (%s), simulated Tegra X1, MTS %d\n\n",
		sys.Name(), sys.MTS())

	fmt.Println("set   speedup   accuracy   carry-skipped   links cut")
	for _, set := range []int{0, 2, 4, 6, 8, 10} {
		o := sys.Evaluate(set)
		fmt.Printf("%3d    %5.2fx    %6.1f%%         %4.0f%%       %4.0f%%\n",
			o.Set, o.Speedup, o.Accuracy*100, o.SkipFraction*100, o.BreakRate*100)
	}

	ao := sys.AO()
	fmt.Printf("\nAO point: set %d — %.2fx at %.1f%% accuracy\n", ao.Set, ao.Speedup, ao.Accuracy*100)
	fmt.Println()
	fmt.Println("Unlike the LSTM's DRS, only the candidate third of the united")
	fmt.Println("GRU matrix is skippable, and carry-pinned units can never have")
	fmt.Println("their context link cut — the GRU trades a lower ceiling for a")
	fmt.Println("gentler skip (carry instead of zero).")
}
