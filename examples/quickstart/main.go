// Quickstart: load one of the paper's NLP benchmarks on the simulated
// mobile GPU, run the baseline cuDNN-style flow and the memory-friendly
// combined flow, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mobilstm"
)

func main() {
	// BABI: the bAbI question-answering task — 256 hidden units, 3 LSTM
	// layers, 86 cells per layer (Table II of the paper).
	sys, err := mobilstm.Open("BABI", mobilstm.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s (maximum tissue size on this GPU: %d)\n\n", sys.Name(), sys.MTS())

	base := sys.Evaluate(mobilstm.ModeBaseline, 0)
	fmt.Printf("baseline   : %6.2f ms, %5.1f MB DRAM traffic\n",
		base.Milliseconds, base.DRAMBytes/(1<<20))

	// The accuracy-oriented point: the most aggressive thresholds whose
	// accuracy loss stays within the user-imperceptible 2%.
	ao := sys.AO(mobilstm.ModeCombined)
	fmt.Printf("combined AO: %6.2f ms, %5.1f MB DRAM traffic\n",
		ao.Milliseconds, ao.DRAMBytes/(1<<20))
	fmt.Printf("\n=> %.2fx speedup, %.1f%% energy saving, %.1f%% accuracy (threshold set %d)\n",
		ao.Speedup, ao.EnergySaving*100, ao.Accuracy*100, ao.Set)
}
