// Sentiment classification (the paper's IMDB workload): compare all
// execution modes at the accuracy-oriented operating point and print the
// full performance-accuracy trade-off curve of the combined system —
// the per-application view of the paper's Fig. 14 and Fig. 19.
//
//	go run ./examples/sentiment
package main

import (
	"fmt"
	"log"

	"mobilstm"
)

func main() {
	sys, err := mobilstm.Open("IMDB", mobilstm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IMDB sentiment classification on a simulated Tegra X1\n\n")

	// Fig. 14 view: each optimization level at its accuracy-oriented
	// point (98% accuracy requirement).
	fmt.Println("mode         speedup   energy saving   accuracy")
	for _, mode := range []mobilstm.Mode{
		mobilstm.ModeInter, mobilstm.ModeIntra, mobilstm.ModeCombined,
	} {
		o := sys.AO(mode)
		fmt.Printf("%-12s  %5.2fx        %5.1f%%     %6.1f%%\n",
			mode, o.Speedup, o.EnergySaving*100, o.Accuracy*100)
	}

	// Fig. 19 view: the whole tuning space of the combined system.
	fmt.Println("\nthreshold set   speedup   accuracy")
	for _, o := range sys.Curve(mobilstm.ModeCombined) {
		bar := ""
		for i := 0.0; i < o.Speedup; i += 0.25 {
			bar += "#"
		}
		fmt.Printf("set %2d          %5.2fx   %6.1f%%   %s\n", o.Set, o.Speedup, o.Accuracy*100, bar)
	}
}
