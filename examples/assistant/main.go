// Intelligent personal assistant: the paper's motivating application. A
// question-answering LSTM serves users with different tolerance for
// delay vs accuracy; the user-oriented (UO) scheme tunes the thresholds
// per user (§VI-E), which is what wins the paper's user study.
//
//	go run ./examples/assistant
package main

import (
	"fmt"
	"log"

	"mobilstm"
)

func main() {
	sys, err := mobilstm.Open("BABI", mobilstm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("on-device question answering (BABI), simulated Tegra X1")
	fmt.Println()

	users := []struct {
		name          string
		preferredAcc  float64
		whatTheyAsked string
	}{
		{"archivist", 0.999, "never alter an answer"},
		{"commuter", 0.98, "snappy but trustworthy"},
		{"gamer", 0.94, "as fast as possible, small slips fine"},
	}

	base := sys.Evaluate(mobilstm.ModeBaseline, 0)
	fmt.Printf("baseline response time: %.2f ms\n\n", base.Milliseconds)

	fmt.Println("user        wants        chosen set   response     accuracy")
	for _, u := range users {
		o := sys.UO(mobilstm.ModeCombined, u.preferredAcc)
		fmt.Printf("%-10s  acc>=%.1f%%   set %2d       %7.2f ms   %6.1f%%\n",
			u.name, u.preferredAcc*100, o.Set, o.Milliseconds, o.Accuracy*100)
	}

	fmt.Println()
	fmt.Println("The UO scheme gives each user their own point in the tuning")
	fmt.Println("space instead of one global setting — the paper's user study")
	fmt.Println("found exactly this to score highest (Fig. 18).")
}
