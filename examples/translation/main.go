// Translation scalability (the paper's MT workload): the optimizations'
// gains grow with the model capacity — longer inputs mean more redundant
// weight re-loads for the baseline, larger hidden sizes mean more rows
// for DRS to skip (§VI-B, §VI-D).
//
//	go run ./examples/translation
package main

import (
	"fmt"
	"log"

	"mobilstm"
)

func main() {
	fmt.Println("MT (English->French proxy) scalability on a simulated Tegra X1")

	// Scale the input length: the baseline re-loads the recurrent weight
	// matrix once per additional cell, so the combined system's win
	// grows with the sequence.
	fmt.Println("\ninput length   baseline ms   combined ms   speedup")
	for _, length := range []int{25, 50, 100, 200} {
		sys, err := mobilstm.OpenCustom("MT", 0, 0, length, mobilstm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		base := sys.Evaluate(mobilstm.ModeBaseline, 0)
		ao := sys.AO(mobilstm.ModeCombined)
		fmt.Printf("%8d       %8.2f     %8.2f     %5.2fx\n",
			length, base.Milliseconds, ao.Milliseconds, ao.Speedup)
	}

	// Scale the hidden size: the weight matrices grow quadratically and
	// the intra-cell row skipping saves proportionally more bandwidth.
	fmt.Println("\nhidden size    baseline ms   intra-AO ms   speedup")
	for _, hidden := range []int{250, 500, 750} {
		sys, err := mobilstm.OpenCustom("MT", hidden, 0, 0, mobilstm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		base := sys.Evaluate(mobilstm.ModeBaseline, 0)
		ao := sys.AO(mobilstm.ModeIntra)
		fmt.Printf("%8d       %8.2f     %8.2f     %5.2fx\n",
			hidden, base.Milliseconds, ao.Milliseconds, ao.Speedup)
	}
}
