# Development targets for the mobilstm simulator.
#
# `make check` is the CI gate for build + vet + race-enabled tests; the
# project's own static-analysis suite runs as its own gate (`make
# lint-ci`, wall-clock-budgeted) so lint time is visible and bounded
# separately from the test wall (see docs/STATIC_ANALYSIS.md).

GO ?= go

.PHONY: build test race vet vet386 lint lint-json lint-ci fuzz-smoke \
	serve-race determinism-race batch-race fleet-race chain-matrix \
	bench-json bench-batch serve-smoke fleet-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# 32-bit vet pass: catches int-overflow bugs (e.g. untyped constants
# that only fit in 64-bit int) that amd64-only vet misses.
vet386:
	GOARCH=386 $(GO) vet ./...

lint:
	$(GO) run ./cmd/mobilstm-lint ./...

# Machine-readable findings for CI artifacts: lint-findings.json is
# written even when findings exist (exit 1), so counts stay diffable
# across PRs; only a load/usage error (exit 2) fails the target. The
# binary is built explicitly because `go run` flattens every non-zero
# program exit to 1, losing the findings-vs-error distinction.
lint-json:
	$(GO) build -o /tmp/mobilstm-lint ./cmd/mobilstm-lint
	/tmp/mobilstm-lint -json ./... > lint-findings.json; \
	status=$$?; if [ $$status -ge 2 ]; then exit $$status; fi

# The CI lint gate: findings fail the build (exit 1), and so does
# blowing the wall-clock budget — the interprocedural summary engine
# must stay cheap enough to run on every push. Emits lint-findings.json
# and lint-summaries.json as artifacts regardless of outcome.
LINT_BUDGET_SECS ?= 60
lint-ci:
	$(GO) build -o /tmp/mobilstm-lint ./cmd/mobilstm-lint
	start=$$(date +%s); \
	/tmp/mobilstm-lint -json -summaries lint-summaries.json ./... > lint-findings.json; \
	status=$$?; elapsed=$$(( $$(date +%s) - start )); \
	echo "mobilstm-lint: $${elapsed}s elapsed (budget $(LINT_BUDGET_SECS)s)"; \
	if [ $$elapsed -gt $(LINT_BUDGET_SECS) ]; then \
		echo "mobilstm-lint: exceeded the $(LINT_BUDGET_SECS)s budget"; exit 1; \
	fi; \
	exit $$status

# Short deterministic shake of the gpu fuzz targets; CI runs this in
# addition to `check`.
fuzz-smoke:
	$(GO) test -run=Fuzz -fuzz=FuzzCacheAccess -fuzztime=10s ./internal/gpu/

# Focused race gate for the concurrent serving path: the serve package
# plus the shared-engine regression tests in core. Already covered by
# `make race`, kept separate so the serving loop can be hammered alone.
serve-race:
	$(GO) test -race -count=2 ./internal/serve/... ./internal/core/...

# Focused race gate for the packed hot path: the network-level
# determinism tests (bitwise-identical logits across GOMAXPROCS, the
# cold-cache build race, Invalidate) plus the kernel equivalence suite.
# Already inside `make race`; kept separate so CI reruns it -count=2.
determinism-race:
	$(GO) test -race -count=2 \
		-run 'Bitwise|Repeatable|ColdCache|Invalidate|Equivalent|Matches' \
		./internal/tensor/ ./internal/lstm/ ./internal/gru/

# Focused race gate for the batched forward path: the RunBatch
# bitwise-equivalence suites in lstm/gru (serial-vs-batch, GOMAXPROCS
# sweep, shared cold-cache build), the batch GEMM kernel tests, and the
# serve window-dispatch tests (one RunBatch per drained window, ragged
# lengths, malformed-member isolation). Already inside `make race`;
# kept separate so CI reruns it -count=2.
batch-race:
	$(GO) test -race -count=2 -run 'Batch|Window|Malformed|GemmRows' \
		./internal/tensor/ ./internal/lstm/ ./internal/gru/ ./internal/serve/

# Kernel-chain matrix: the equivalence and determinism suites re-run
# with each chain forced process-wide via MOBILSTM_KERNEL_CHAIN.
# generic disables every assembly body (the pure-Go reference
# configuration), sse2 is the default canonical chain, and avx2 forces
# the wide chain — served by the pure-Go wide twin when the host lacks
# AVX2+FMA, so the matrix passes on any amd64 or non-amd64 runner.
chain-matrix:
	for chain in generic sse2 avx2; do \
		echo "=== MOBILSTM_KERNEL_CHAIN=$$chain ==="; \
		MOBILSTM_KERNEL_CHAIN=$$chain $(GO) test -count=1 \
			-run 'Bitwise|Repeatable|ColdCache|Invalidate|Equivalent|Matches|Wide|Chain' \
			./internal/tensor/ ./internal/lstm/ ./internal/gru/ || exit 1; \
	done

# Hot-path benchmark trajectory: the united/packed kernel
# micro-benchmarks plus the end-to-end Run benchmarks, folded into
# BENCH_hotpath.json by cmd/benchjson (min ns/op over BENCHCOUNT
# samples — the noise protocol of EXPERIMENTS.md). CI runs this as a
# smoke with a short BENCHTIME; local trajectory numbers want the
# defaults or longer.
BENCHTIME ?= 10x
BENCHCOUNT ?= 3
bench-json:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run='^$$' -bench='Gemv|Gemm' -benchmem \
		-benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) ./internal/tensor/ > /tmp/bench_hotpath.txt
	$(GO) test -run='^$$' -bench='^BenchmarkRun' -benchmem \
		-benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) . >> /tmp/bench_hotpath.txt
	/tmp/benchjson < /tmp/bench_hotpath.txt > BENCH_hotpath.json

# Batch-size sweep alone: the RunBatch benchmarks over B ∈ {1..16}
# with the per-request ns/req metric, without the rest of the hot-path
# wall. `make bench-json` already folds these into BENCH_hotpath.json
# (its '^BenchmarkRun' pattern matches BenchmarkRunBatch too); this
# target is for iterating on the batch path locally.
bench-batch:
	$(GO) test -run='^$$' -bench='^BenchmarkRunBatch' -benchmem \
		-benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) .

# Focused race gate for the fleet tier: sharded routing, the shared
# single-flight engine cache, cold/warm charge accounting, and the
# concurrent Warm/Submit/Stats/Close interleavings. Already inside
# `make race`; kept separate so CI reruns it -count=2.
fleet-race:
	$(GO) test -race -count=2 \
		-run 'Fleet|Concurrent|Warm|Cold|StaleTick|Transient|Dropped' \
		./internal/serve/

# End-to-end scenario smoke of the serving binary: a short open-loop
# run over one benchmark on the quick profile. Exercises the batching
# window, the worker pool, and the packed hot path under real traffic.
serve-smoke:
	$(GO) run ./cmd/mobilstm-serve -benches MR -requests 12 -interarrival 1 -seed 7

# Fleet smoke: the cold-then-prewarmed validation protocol over a
# three-shard heterogeneous fleet. Asserts one cold build per benchmark
# fleet-wide (single-flight cache), full pre-warm propagation, and warm
# p99 < cold p99.
fleet-smoke:
	$(GO) run ./cmd/mobilstm-serve -shards 3 -fleetcheck \
		-benches MR,BABI -requests 16 -interarrival 1 -seed 7

check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...
