# Development targets for the mobilstm simulator.
#
# `make check` is the CI gate: build, vet, race-enabled tests, then the
# project's own static-analysis suite (see docs/STATIC_ANALYSIS.md).

GO ?= go

.PHONY: build test race vet vet386 lint lint-json fuzz-smoke serve-race check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# 32-bit vet pass: catches int-overflow bugs (e.g. untyped constants
# that only fit in 64-bit int) that amd64-only vet misses.
vet386:
	GOARCH=386 $(GO) vet ./...

lint:
	$(GO) run ./cmd/mobilstm-lint ./...

# Machine-readable findings for CI artifacts: lint-findings.json is
# written even when findings exist (exit 1), so counts stay diffable
# across PRs; only a load/usage error (exit 2) fails the target. The
# binary is built explicitly because `go run` flattens every non-zero
# program exit to 1, losing the findings-vs-error distinction.
lint-json:
	$(GO) build -o /tmp/mobilstm-lint ./cmd/mobilstm-lint
	/tmp/mobilstm-lint -json ./... > lint-findings.json; \
	status=$$?; if [ $$status -ge 2 ]; then exit $$status; fi

# Short deterministic shake of the gpu fuzz targets; CI runs this in
# addition to `check`.
fuzz-smoke:
	$(GO) test -run=Fuzz -fuzz=FuzzCacheAccess -fuzztime=10s ./internal/gpu/

# Focused race gate for the concurrent serving path: the serve package
# plus the shared-engine regression tests in core. Already covered by
# `make race`, kept separate so the serving loop can be hammered alone.
serve-race:
	$(GO) test -race -count=2 ./internal/serve/... ./internal/core/...

check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./... && $(GO) run ./cmd/mobilstm-lint ./...
