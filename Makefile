# Development targets for the mobilstm simulator.
#
# `make check` is the CI gate: build, vet, race-enabled tests, then the
# project's own static-analysis suite (see docs/STATIC_ANALYSIS.md).

GO ?= go

.PHONY: build test race vet lint fuzz-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/mobilstm-lint ./...

# Short deterministic shake of the gpu fuzz targets; CI runs this in
# addition to `check`.
fuzz-smoke:
	$(GO) test -run=Fuzz -fuzz=FuzzCacheAccess -fuzztime=10s ./internal/gpu/

check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./... && $(GO) run ./cmd/mobilstm-lint ./...
