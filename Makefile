# Development targets for the mobilstm simulator.
#
# `make check` is the CI gate: build, vet, race-enabled tests, then the
# project's own static-analysis suite (see docs/STATIC_ANALYSIS.md).

GO ?= go

.PHONY: build test race vet lint lint-json fuzz-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/mobilstm-lint ./...

# Machine-readable findings for CI artifacts: lint-findings.json is
# written even when findings exist (exit 1), so counts stay diffable
# across PRs; only a load/usage error (exit 2) fails the target. The
# binary is built explicitly because `go run` flattens every non-zero
# program exit to 1, losing the findings-vs-error distinction.
lint-json:
	$(GO) build -o /tmp/mobilstm-lint ./cmd/mobilstm-lint
	/tmp/mobilstm-lint -json ./... > lint-findings.json; \
	status=$$?; if [ $$status -ge 2 ]; then exit $$status; fi

# Short deterministic shake of the gpu fuzz targets; CI runs this in
# addition to `check`.
fuzz-smoke:
	$(GO) test -run=Fuzz -fuzz=FuzzCacheAccess -fuzztime=10s ./internal/gpu/

check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./... && $(GO) run ./cmd/mobilstm-lint ./...
