// Package mobilstm is a reproduction of "Towards Memory Friendly
// Long-Short Term Memory Networks (LSTMs) on Mobile GPUs" (MICRO 2018):
// a memory-friendly LSTM inference system that combines inter-cell layer
// re-organization (tissue parallelism over weak context links) with
// intra-cell Dynamic Row Skip, evaluated on a simulated Tegra-X1-class
// mobile GPU.
//
// The package is a facade over the internal implementation. Typical use:
//
//	sys, _ := mobilstm.Open("PTB", mobilstm.Options{})
//	outcome := sys.Evaluate(mobilstm.ModeCombined, 7)
//	fmt.Printf("%.2fx speedup at %.1f%% accuracy\n",
//	    outcome.Speedup, outcome.Accuracy*100)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package mobilstm

import (
	"fmt"

	"mobilstm/internal/core"
	"mobilstm/internal/gpu"
	"mobilstm/internal/model"
	"mobilstm/internal/sched"
	"mobilstm/internal/tradeoff"
)

// Mode selects an execution flow.
type Mode int

// Execution flows.
const (
	// ModeBaseline is the state-of-the-art cuDNN-style flow
	// (Algorithm 1 of the paper).
	ModeBaseline Mode = iota
	// ModeInter applies the inter-cell tissue optimization (§IV).
	ModeInter
	// ModeIntra applies hardware Dynamic Row Skip (§V).
	ModeIntra
	// ModeCombined applies both (the paper's overall system).
	ModeCombined
)

func (m Mode) internal() sched.Mode {
	switch m {
	case ModeInter:
		return sched.Inter
	case ModeIntra:
		return sched.Intra
	case ModeCombined:
		return sched.Combined
	default:
		return sched.Baseline
	}
}

// String names the mode.
func (m Mode) String() string { return m.internal().String() }

// Options configures a System.
type Options struct {
	// Full evaluates at the exact Table II shapes instead of the capped
	// quick profile (slower; identical timing model, more faithful
	// accuracy shapes).
	Full bool
}

// Benchmark describes one of the paper's Table II applications.
type Benchmark struct {
	Name    string
	Task    string
	Hidden  int
	Layers  int
	Length  int
	Classes int
}

// Benchmarks lists the six Table II applications.
func Benchmarks() []Benchmark {
	out := make([]Benchmark, 0, 6)
	for _, b := range model.Zoo() {
		out = append(out, Benchmark{
			Name: b.Name, Task: string(b.Task),
			Hidden: b.Hidden, Layers: b.Layers, Length: b.Length, Classes: b.Classes,
		})
	}
	return out
}

// Outcome is one evaluated operating point.
type Outcome struct {
	Mode Mode
	// Set is the threshold set (0 = exact baseline .. 10 = maximal).
	Set int
	// Speedup and EnergySaving are relative to the baseline flow on the
	// same benchmark.
	Speedup      float64
	EnergySaving float64
	// Accuracy is relative output accuracy (1 = exact).
	Accuracy float64
	// Milliseconds is the simulated end-to-end inference latency.
	Milliseconds float64
	// DRAMBytes is the simulated off-chip traffic.
	DRAMBytes float64
}

// System is a benchmark loaded on the simulated platform with the offline
// calibration (MTS, threshold limits, predicted links) done.
type System struct {
	engine *core.Engine
}

// Open builds the named Table II benchmark (see Benchmarks) on the
// simulated Tegra X1.
func Open(benchmark string, opts Options) (*System, error) {
	b, ok := model.ByName(benchmark)
	if !ok {
		return nil, fmt.Errorf("mobilstm: unknown benchmark %q", benchmark)
	}
	prof := model.Quick()
	if opts.Full {
		prof = model.Full()
	}
	return &System{engine: core.NewEngine(b, prof, gpu.TegraX1())}, nil
}

// OpenCustom builds a benchmark with custom LSTM shapes, starting from a
// named zoo benchmark's task and generator settings. Zero fields keep the
// base benchmark's values. Use it to reproduce the paper's model-capacity
// study (Fig. 17) or to size your own workload.
func OpenCustom(base string, hidden, layers, length int, opts Options) (*System, error) {
	b, ok := model.ByName(base)
	if !ok {
		return nil, fmt.Errorf("mobilstm: unknown benchmark %q", base)
	}
	if hidden > 0 {
		b.Hidden = hidden
	}
	if layers > 0 {
		b.Layers = layers
	}
	if length > 0 {
		b.Length = length
	}
	b.Name = fmt.Sprintf("%s-%dx%dx%d", b.Name, b.Hidden, b.Layers, b.Length)
	// Mix in uint64: the Knuth multiplier exceeds 2^31, so int
	// arithmetic would overflow (and fail to compile) on 32-bit
	// platforms. Bit-identical to the old int math on 64-bit targets.
	b.Seed ^= uint64(b.Hidden)*2654435761 + uint64(b.Layers)*40503 + uint64(b.Length)
	prof := model.Quick()
	if opts.Full {
		prof = model.Full()
	}
	return &System{engine: core.NewEngine(b, prof, gpu.TegraX1())}, nil
}

// Name returns the benchmark name the system was opened with.
func (s *System) Name() string { return s.engine.B.Name }

// MTS returns the platform's maximum tissue size for this benchmark.
func (s *System) MTS() int { return s.engine.MTS }

// Evaluate measures one mode at threshold set 0..10.
func (s *System) Evaluate(mode Mode, set int) Outcome {
	o := s.engine.EvaluateSet(mode.internal(), set)
	return Outcome{
		Mode:         mode,
		Set:          set,
		Speedup:      o.Speedup,
		EnergySaving: o.EnergySaving,
		Accuracy:     o.Accuracy,
		Milliseconds: o.Result.Seconds * 1e3,
		DRAMBytes:    o.Result.DRAMBytes,
	}
}

// Curve sweeps all 11 threshold sets for a mode.
func (s *System) Curve(mode Mode) []Outcome {
	out := make([]Outcome, core.ThresholdSets)
	for set := range out {
		out[set] = s.Evaluate(mode, set)
	}
	return out
}

// AO returns the accuracy-oriented operating point: the most aggressive
// threshold set whose accuracy loss stays within the user-imperceptible
// 2% (§VI-B).
func (s *System) AO(mode Mode) Outcome {
	curve := s.Curve(mode)
	return curve[curveOf(curve).AO()]
}

// BPA returns the best performance-accuracy point (argmax
// speedup x accuracy, §VI-C).
func (s *System) BPA(mode Mode) Outcome {
	curve := s.Curve(mode)
	return curve[curveOf(curve).BPA()]
}

// UO returns the user-oriented point for a user who demands the given
// accuracy (§VI-E).
func (s *System) UO(mode Mode, preferredAccuracy float64) Outcome {
	curve := s.Curve(mode)
	return curve[curveOf(curve).LargestWithAccuracy(preferredAccuracy)]
}

func curveOf(outs []Outcome) tradeoff.Curve {
	c := make(tradeoff.Curve, len(outs))
	for i, o := range outs {
		c[i] = tradeoff.Point{Set: i, Speedup: o.Speedup, EnergySaving: o.EnergySaving, Accuracy: o.Accuracy}
	}
	return c
}
