// Ablation benchmarks for the design choices DESIGN.md calls out, plus
// the paper's §II-B GRU extension. These are not paper figures; they
// justify individual mechanisms.
package mobilstm_test

import (
	"testing"

	"mobilstm/internal/accuracy"
	"mobilstm/internal/gpu"
	"mobilstm/internal/gru"
	"mobilstm/internal/intercell"
	"mobilstm/internal/kernels"
	"mobilstm/internal/lstm"
	"mobilstm/internal/model"
	"mobilstm/internal/rng"
	"mobilstm/internal/stats"
	"mobilstm/internal/tensor"
)

// BenchmarkAblationTissueAlignment compares raw tissue formation against
// MTS-bounded alignment (§IV-C): formation alone produces fat tissues
// (over the shared-memory roofline) and thin ones (poor reuse); alignment
// recovers the minimal tissue count.
func BenchmarkAblationTissueAlignment(b *testing.B) {
	r := rng.New(42)
	n, mts := 200, 5
	var breaks []int
	for i := 1; i < n; i++ {
		if r.Bernoulli(0.25) {
			breaks = append(breaks, i)
		}
	}
	subs := intercell.Sublayers(n, breaks)
	cfg := gpu.TegraX1()
	sim := gpu.NewSimulator(cfg)
	kb := kernels.NewBuilder(cfg)
	simulate := func(tissues [][]int) float64 {
		var ks []gpu.KernelSpec
		for _, tis := range tissues {
			k, _ := kb.SgemmTissue(650, len(tis))
			ks = append(ks, k, kb.LstmEW(650, len(tis)))
		}
		return sim.Run(ks).Cycles
	}
	var formedC, alignedC float64
	for i := 0; i < b.N; i++ {
		formed := intercell.FormTissues(subs)
		aligned := intercell.AlignTissues(subs, mts)
		formedC = simulate(formed)
		alignedC = simulate(aligned)
		if i == 0 {
			b.Logf("formation only: %d tissues, %.0f cycles; aligned: %d tissues, %.0f cycles (%.2fx)",
				len(formed), formedC, len(aligned), alignedC, formedC/alignedC)
		}
	}
	b.ReportMetric(formedC/alignedC, "alignment-gain-x")
}

// BenchmarkAblationPredictedLink measures the accuracy-recovery value of
// the Eq. 6 predicted context link against a zero (cold) link at the
// same division thresholds.
func BenchmarkAblationPredictedLink(b *testing.B) {
	bm, _ := model.ByName("BABI")
	prof := model.Profile{Name: "ablate", HiddenCap: 96, LengthCap: 24,
		AccSamples: 30, PredictorSamples: 4, StatSamples: 2}
	inst := model.Build(bm, prof)
	preds := lstm.CollectPredictors(inst.Net, inst.PredictorSeqs())
	zeros := make([]intercell.Predictor, len(preds))
	for i, l := range inst.Net.Layers {
		_ = l
		zeros[i] = intercell.Predictor{
			H: tensor.NewVector(inst.Hidden), C: tensor.NewVector(inst.Hidden)}
	}
	// A deliberately aggressive threshold so the recovery matters.
	tr := &lstm.Trace{}
	inst.Net.Run(inst.StatSeqs()[0], lstm.RunOptions{Inter: true, MTS: 5, Predictors: preds, Trace: tr})
	var rels []float64
	for _, lt := range tr.Layers {
		rels = append(rels, lt.Relevance...)
	}
	alpha := stats.QuantileOf(rels, 0.30)

	seqs, refs := inst.AccSeqs()
	var withPred, withZero float64
	for i := 0; i < b.N; i++ {
		withPred = accuracy.Score(inst.Net, seqs, refs,
			lstm.RunOptions{Inter: true, AlphaInter: alpha, MTS: 5, Predictors: preds})
		withZero = accuracy.Score(inst.Net, seqs, refs,
			lstm.RunOptions{Inter: true, AlphaInter: alpha, MTS: 5, Predictors: zeros})
		if i == 0 {
			b.Logf("accuracy with Eq.6 predictor: %.3f, with zero link: %.3f", withPred, withZero)
		}
	}
	b.ReportMetric(withPred, "predicted-acc")
	b.ReportMetric(withZero, "zero-link-acc")
}

// BenchmarkAblationHardSigmoid swaps the exact sigmoid for the hard
// sigmoid (Fig. 7): the sensitive-area analysis must remain valid, so
// the accuracy at mid thresholds should be comparable.
func BenchmarkAblationHardSigmoid(b *testing.B) {
	bm, _ := model.ByName("MR")
	prof := model.Profile{Name: "ablate", HiddenCap: 96, LengthCap: 22,
		AccSamples: 30, PredictorSamples: 4, StatSamples: 2}
	inst := model.Build(bm, prof)
	preds := lstm.CollectPredictors(inst.Net, inst.PredictorSeqs())
	seqs, refs := inst.AccSeqs()
	opt := lstm.RunOptions{Intra: true, AlphaIntra: 0.15, Inter: true,
		AlphaInter: 0, MTS: 5, Predictors: preds}
	var exact, hard float64
	for i := 0; i < b.N; i++ {
		inst.Net.Gate = tensor.ActSigmoid
		exact = accuracy.Score(inst.Net, seqs, refs, opt)
		inst.Net.Gate = tensor.ActHardSigmoid
		hard = accuracy.Score(inst.Net, seqs, refs, opt)
		inst.Net.Gate = tensor.ActSigmoid
		if i == 0 {
			b.Logf("DRS accuracy: exact sigmoid %.3f, hard sigmoid %.3f", exact, hard)
		}
	}
	b.ReportMetric(exact, "sigmoid-acc")
	b.ReportMetric(hard, "hard-sigmoid-acc")
}

// BenchmarkExtGRU exercises the §II-B extension: the same optimizations
// applied to a GRU network — numeric accuracy of carry-DRS plus the
// simulated timing of the adjusted flows.
func BenchmarkExtGRU(b *testing.B) {
	// Numeric side: a BABI-shaped GRU.
	net := gru.NewNetwork(96, 96, 2, 8)
	net.InitRandom(rng.New(77), func(l int) float64 { return 1 + 0.3*float64(l) }, 0.5)
	r := rng.New(78)
	seqs := make([][]tensor.Vector, 0, 24)
	refs := make([]int, 0, 24)
	for len(seqs) < 24 {
		xs := make([]tensor.Vector, 24)
		for t := range xs {
			v := tensor.NewVector(96)
			for j := range v {
				v[j] = r.NormF32(0, 1.5)
			}
			xs[t] = v
		}
		// Keep confidently classified samples only, mirroring the main
		// corpus filter.
		logits := net.Run(xs, gru.Baseline())
		best := tensor.ArgMax(logits)
		confident := true
		for j, v := range logits {
			if j != best && logits[best]-v < 0.45 {
				confident = false
				break
			}
		}
		if !confident {
			continue
		}
		seqs = append(seqs, xs)
		refs = append(refs, best)
	}
	preds := gru.CollectPredictors(net, seqs[:2])

	// Timing side: full BABI shape, GRU kernels.
	cfg := gpu.TegraX1()
	sim := gpu.NewSimulator(cfg)
	kb := kernels.NewBuilder(cfg)
	h, cells := 500, 50 // the MT shape: large enough to amortize the extra launches
	var acc float64
	var speedup float64
	for i := 0; i < b.N; i++ {
		match := 0
		for s, xs := range seqs {
			got := net.Classify(xs, gru.RunOptions{
				Inter: true, AlphaInter: 0, MTS: 5, Predictors: preds,
				Intra: true, AlphaIntra: 0.12,
			})
			if got == refs[s] {
				match++
			}
		}
		acc = float64(match) / float64(len(seqs))

		var base, opt []gpu.KernelSpec
		base = append(base, kb.GRUSgemmWx(h, h, cells))
		opt = append(opt, kb.GRUSgemmWx(h, h, cells))
		for c := 0; c < cells; c++ {
			base = append(base, kb.GRUSgemvU(h), kb.GRUEW(h, 1))
			opt = append(opt,
				kb.GRUSgemvZR(h), kb.GRUEW(h, 1), kb.GRUDRS(h, h/2),
				kb.GRUSgemvUh(h, h/2, kernels.DRSHardware), kb.GRUEW(h, 1))
		}
		speedup = sim.Run(base).Cycles / sim.Run(opt).Cycles
		if i == 0 {
			b.Logf("GRU carry-DRS: accuracy %.3f, simulated DRS-flow speedup %.2fx "+
				"(ceiling lower than LSTM: only U_h rows are skippable)", acc, speedup)
		}
	}
	b.ReportMetric(acc, "gru-drs-acc")
	b.ReportMetric(speedup, "gru-drs-x")
}

// BenchmarkExtCrossPlatform evaluates the framework's portability across
// GPU generations: the offline MTS discovery re-tunes the tissue bound
// per platform (§IV-C).
func BenchmarkExtCrossPlatform(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		t := s.CrossPlatform("PTB")
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkExtDVFS spends the combined optimization's latency headroom on
// GPU frequency scaling: at iso-latency with the baseline, most of the
// speedup converts into additional energy saving because the LSTM's
// memory-bound phases barely slow down at lower core clocks.
func BenchmarkExtDVFS(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		t := s.IsoLatencyDVFS("PTB")
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkExtServerContrast reproduces the §II-C motivation: a server
// GPU pipelines layers with resident weights; the mobile GPU cannot, and
// the paper's optimizations close part of that gap on-device.
func BenchmarkExtServerContrast(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		t := s.ServerContrast("PTB")
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkExtGRUSweep evaluates the full GRU threshold sweep across the
// GRU zoo (the extension's counterpart to Fig. 19).
func BenchmarkExtGRUSweep(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		t := s.GRUSweep()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkExtRequestBatching contrasts exact cross-request batching
// (which reuses U but makes interactive users queue) against the paper's
// single-request tissues.
func BenchmarkExtRequestBatching(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		t := s.RequestBatching("BABI", 200)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

// BenchmarkExtBandwidthSensitivity sweeps off-chip bandwidth: the
// baseline scales with it (it is bandwidth-bound) and the optimizations
// matter most where bandwidth is scarce.
func BenchmarkExtBandwidthSensitivity(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		t := s.BandwidthSensitivity("PTB")
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}
